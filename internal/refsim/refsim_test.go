package refsim

import (
	"testing"

	"oovec/internal/isa"
	"oovec/internal/probe"
	"oovec/internal/trace"
)

// cfg50 is the default test configuration: 50-cycle memory.
func cfg50() Config { return Config{MemLatency: 50, TakenBranchPenalty: 2} }

// run is a helper that simulates and returns (issue times, stats).
func runWithProbe(t *trace.Trace, cfg Config) ([]int64, []int64) {
	issues := make([]int64, t.Len())
	cfg.Sink = probe.InsnFunc(func(e probe.Event) { issues[e.Index] = e.Issue })
	st := Run(t, cfg)
	return issues, []int64{st.Cycles}
}

func TestSingleVectorAddTiming(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(2), isa.V(0), isa.V(1))
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	// setvl at 0; vadd: decode 1, serialise on setvl done (1), +1 read
	// crossbar = 2.
	if issues[0] != 0 || issues[1] != 2 {
		t.Errorf("issues = %v, want [0 2]", issues)
	}
	st := Run(tr, cfg50())
	// Completion: issue 2 + startup 8 + lat 4 + writeX 1 + VL-1 63 = 78;
	// total 79.
	if st.Cycles != 79 {
		t.Errorf("cycles = %d, want 79", st.Cycles)
	}
}

func TestChainingFUtoFU(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(2), isa.V(0), isa.V(1)) // issue 2, chain at 15
	b.Vector(isa.OpVMul, isa.V(4), isa.V(2), isa.V(6)) // chains: issue 17
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	// vadd chain point: 2 + startup 8 + lat 4 + writeX 1 = 15; vmul reads at
	// 16 plus the read crossbar = 17 — far before the vadd completes at 78.
	if issues[2] != 17 {
		t.Errorf("chained vmul issue = %d, want 17 (chain, not wait for completion)", issues[2])
	}
	st := Run(tr, cfg50())
	// vmul: 17 + startup 8 + lat 9 + writeX 1 + 63 = 98; total 99.
	if st.Cycles != 99 {
		t.Errorf("cycles = %d, want 99", st.Cycles)
	}
}

func TestNoChainingFromLoads(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	b.VLoad(isa.V(2), 0x1000)                          // bus at 1; complete 115
	b.Vector(isa.OpVAdd, isa.V(4), isa.V(2), isa.V(0)) // must wait full load
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	if issues[1] != 1 {
		t.Errorf("vload bus start = %d, want 1", issues[1])
	}
	// Load complete = 1 + startup 8 + 50 + 1 + 63 = 123; vadd reads at
	// 123 + readX 1 = 124.
	if issues[2] != 124 {
		t.Errorf("dependent vadd issue = %d, want 124 (no load chaining)", issues[2])
	}
}

func TestStoreChainsFromFU(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(2), isa.V(0), isa.V(1)) // issue 2, chain 15
	b.VStore(isa.V(2), 0x1000)                         // chainable consumer
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	// Store can begin once the first element is available: ready at
	// ChainStart+1 = 16, well before the add completes at 78.
	if issues[2] >= 78 {
		t.Errorf("store issue = %d, should chain (< 78)", issues[2])
	}
	if issues[2] != 16 {
		t.Errorf("store issue = %d, want 16", issues[2])
	}
}

func TestWAWStallsWithoutRenaming(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	b.VLoad(isa.V(2), 0x1000)
	b.VLoad(isa.V(2), 0x9000) // same architectural register: WAW
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	// First load completes at 115; the second write of v2 must wait
	// (WAW), even though the bus frees at 65.
	if issues[2] <= 100 {
		t.Errorf("WAW load issue = %d, want > 100 (stall on prior writer)", issues[2])
	}
}

func TestWARStallsWithoutRenaming(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	b.Vector(isa.OpVAdd, isa.V(2), isa.V(0), isa.V(1)) // reads v0
	b.VLoad(isa.V(0), 0x1000)                          // overwrites v0: WAR
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	if issues[2] <= issues[1] {
		t.Errorf("WAR writer issue %d should be after reader start %d", issues[2], issues[1])
	}
}

func TestFU2OnlyRouting(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(32, isa.A(0))
	// Two multiplies must serialise on FU2 even though FU1 is idle.
	b.Vector(isa.OpVMul, isa.V(2), isa.V(0), isa.V(1))
	b.Vector(isa.OpVMul, isa.V(4), isa.V(0), isa.V(1))
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	if issues[2]-issues[1] < 32 {
		t.Errorf("second vmul at %d, first at %d: FU2 must serialise by VL=32",
			issues[2], issues[1])
	}
}

func TestFlexibleOpsUseBothFUs(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	// Two independent adds: second should go to the other FU, limited only
	// by decode (1/cycle) and ports, not FU occupancy.
	b.Vector(isa.OpVAdd, isa.V(0), isa.V(1), isa.V(2))
	b.Vector(isa.OpVAdd, isa.V(4), isa.V(5), isa.V(6))
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	if issues[2]-issues[1] >= 64 {
		t.Errorf("independent adds serialised (%d after %d); should use both FUs",
			issues[2], issues[1])
	}
}

func TestBankPortConflictStalls(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	// v0,v1 share bank 0 (2 read ports). Three simultaneous readers of
	// bank 0 exceed its ports.
	b.Vector(isa.OpVAdd, isa.V(2), isa.V(0), isa.V(1)) // takes both bank-0 read ports
	b.Vector(isa.OpVAdd, isa.V(4), isa.V(0), isa.V(6)) // needs a bank-0 read port
	tr := b.Build()
	st := Run(tr, cfg50())
	if st.VRegPortConflictCycles == 0 {
		t.Error("expected register-file port conflict cycles")
	}
}

func TestTakenBranchBubble(t *testing.T) {
	b := trace.NewBuilder("t")
	b.Scalar(isa.OpAAdd, isa.A(0), isa.A(1), isa.A(2))
	b.Branch(0x40, true)
	b.Scalar(isa.OpAAdd, isa.A(3), isa.A(1), isa.A(2))
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	// Branch at 1; next instruction delayed by the 2-cycle bubble: 1+1+2 = 4.
	if issues[2] != 4 {
		t.Errorf("post-branch issue = %d, want 4", issues[2])
	}
}

func TestScalarLoadLatency(t *testing.T) {
	b := trace.NewBuilder("t")
	b.ScalarLoad(isa.OpSLoad, isa.S(0), 0x100)
	b.Scalar(isa.OpSAdd, isa.S(1), isa.S(0), isa.S(2))
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	// Scalar loads hit the scalar cache: bus at 0, value ready 0+6+1 = 7.
	if issues[1] != 7 {
		t.Errorf("dependent scalar add issue = %d, want 7", issues[1])
	}
}

func TestMemPortAccounting(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	b.VLoad(isa.V(0), 0x1000)
	b.VLoad(isa.V(2), 0x9000)
	b.ScalarLoad(isa.OpSLoad, isa.S(0), 0x100)
	tr := b.Build()
	st := Run(tr, cfg50())
	// Each vector load holds the port for startup 8 + VL 64 cycles.
	if st.MemPortBusy != 72+72+1 {
		t.Errorf("MemPortBusy = %d, want 145", st.MemPortBusy)
	}
	if st.MemRequests != 129 {
		t.Errorf("MemRequests = %d, want 129", st.MemRequests)
	}
	if st.MemPortIdlePct() <= 0 {
		t.Error("expected some idle port cycles")
	}
}

func TestStateBreakdownSumsToTotal(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	for i := 0; i < 8; i++ {
		b.VLoad(isa.V(0), uint64(0x1000+i*0x200))
		b.Vector(isa.OpVAdd, isa.V(2), isa.V(0), isa.V(4))
		b.Vector(isa.OpVMul, isa.V(6), isa.V(2), isa.V(4))
		b.VStore(isa.V(6), uint64(0x20000+i*0x200))
	}
	tr := b.Build()
	st := Run(tr, cfg50())
	if st.States.Total() != st.Cycles {
		t.Errorf("state total %d != cycles %d", st.States.Total(), st.Cycles)
	}
	if st.States.MemIdleCycles()+st.MemPortBusy != st.Cycles {
		t.Errorf("mem idle %d + busy %d != cycles %d",
			st.States.MemIdleCycles(), st.MemPortBusy, st.Cycles)
	}
}

func TestLatencySensitivity(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(16, isa.A(0)) // short vectors expose latency (like dyfesm/trfd)
	for i := 0; i < 20; i++ {
		b.VLoad(isa.V(0), uint64(0x1000+i*0x200))
		b.Vector(isa.OpVAdd, isa.V(2), isa.V(0), isa.V(4))
		b.VStore(isa.V(2), uint64(0x20000+i*0x200))
	}
	tr := b.Build()
	c1 := Run(tr, Config{MemLatency: 1}).Cycles
	c100 := Run(tr, Config{MemLatency: 100}).Cycles
	if c100 <= c1 {
		t.Errorf("REF must be latency sensitive: c(100)=%d <= c(1)=%d", c100, c1)
	}
	// With a dependent chain per iteration the gap should be large.
	if float64(c100)/float64(c1) < 1.5 {
		t.Errorf("latency 100/1 ratio = %.2f, want >= 1.5", float64(c100)/float64(c1))
	}
}

func TestDeterminism(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(64, isa.A(0))
	for i := 0; i < 50; i++ {
		b.VLoad(isa.V(i%8), uint64(0x1000+i*0x200))
		b.Vector(isa.OpVAdd, isa.V((i+2)%8), isa.V(i%8), isa.V((i+4)%8))
	}
	tr := b.Build()
	a := Run(tr, cfg50())
	c := Run(tr, cfg50())
	if a.Cycles != c.Cycles || a.States != c.States || a.MemPortBusy != c.MemPortBusy {
		t.Error("two runs of the same trace+config disagree")
	}
}

func TestInOrderIssueMonotonic(t *testing.T) {
	b := trace.NewBuilder("t")
	b.SetVL(32, isa.A(0))
	for i := 0; i < 30; i++ {
		b.VLoad(isa.V(i%8), uint64(0x1000+i*0x100))
		b.Vector(isa.OpVMul, isa.V((i+1)%8), isa.V(i%8), isa.V((i+3)%8))
		b.Scalar(isa.OpAAdd, isa.A(0), isa.A(1), isa.A(2))
	}
	tr := b.Build()
	issues, _ := runWithProbe(tr, cfg50())
	for i := 1; i < len(issues); i++ {
		if issues[i] <= issues[i-1] {
			t.Fatalf("issue order violated at %d: %d then %d", i, issues[i-1], issues[i])
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	if DefaultConfig().MemLatency != 50 {
		t.Error("default memory latency must be the paper's 50 cycles")
	}
}
