// Package refsim simulates the reference architecture of the paper: an
// in-order vector machine modelled after the Convex C3400 (§2.1).
//
// Machine structure:
//
//   - A scalar unit executing all instructions involving A and S registers,
//     issuing at most one instruction per cycle.
//   - A vector unit with two computation units: FU2 (general purpose,
//     executes everything) and FU1 (restricted: everything except multiply,
//     divide and square root), both fully pipelined.
//   - One memory unit (MEM) sharing a single address bus for all scalar and
//     vector transactions.
//   - Eight vector registers of 128 × 64-bit elements, grouped in banks of
//     two registers sharing two read ports and one write port.
//   - Chaining from functional units to other functional units and to the
//     store unit; memory loads are NOT chained into functional units.
//
// The simulator is trace-driven and interval-timed: instructions are
// processed in program order; each one computes its earliest feasible issue
// cycle from operand readiness (with chaining), register hazards (the
// machine has no renaming, so WAW and WAR stall), port conflicts and unit
// occupancy. In-order issue is enforced by a blocking decode: instruction
// i+1 never issues before instruction i.
package refsim

import (
	"oovec/internal/isa"
	"oovec/internal/metrics"
	"oovec/internal/probe"
	"oovec/internal/sched"
	"oovec/internal/trace"
	"oovec/internal/vregfile"
)

// Config parameterises the reference machine.
type Config struct {
	// MemLatency is the main-memory latency in cycles (the paper sweeps
	// 1..100; default 50).
	MemLatency int64
	// ScalarMemLatency is the latency of scalar references. Vector
	// machines of this class cached scalar data (the paper: data caches
	// were not used in vector processors "except to cache scalar data"),
	// so scalar references see a short cache latency rather than main
	// memory. Default 6.
	ScalarMemLatency int64
	// TakenBranchPenalty is the fetch-bubble charged for taken branches
	// (the in-order machine has no branch prediction). Default 2.
	TakenBranchPenalty int64
	// Sink, when non-nil, receives per-instruction lifecycle events and
	// stall-cause notifications (package probe). Observation only: attaching
	// a sink never changes the run's RunStats. The in-order machine models
	// no fetch/decode/commit stages, so those event fields are -1.
	Sink probe.Sink
}

// DefaultConfig returns the paper's reference configuration.
func DefaultConfig() Config {
	return Config{MemLatency: 50, ScalarMemLatency: 6, TakenBranchPenalty: 2}
}

// vregState is the hazard-tracking state of one logical vector register.
type vregState struct {
	timing        vregfile.Timing
	lastReadStart int64 // most recent consumer's issue cycle (WAR)
	hasValue      bool
}

// WithDefaults returns the configuration with every defaulted field filled
// with the value Run would use — the canonical form callers key caches on
// (mirroring ooosim.Config.WithDefaults).
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills the latency fields Run has always defaulted.
func (c Config) withDefaults() Config {
	if c.MemLatency <= 0 {
		c.MemLatency = 50
	}
	if c.ScalarMemLatency <= 0 {
		c.ScalarMemLatency = 6
	}
	return c
}

// Run simulates the trace on the reference machine and returns its
// measurements.
func Run(t *trace.Trace, cfg Config) *metrics.RunStats {
	return newMachine(cfg).run(t)
}

// Machine is a reusable reference-simulator instance, mirroring
// ooosim.Machine: Reset restores the power-on state without reallocating
// (the reference machine's structure is fixed, so reuse never rebuilds),
// amortising the interval-list and scratch storage across many runs.
//
// A Machine is not safe for concurrent use; give each worker its own.
type Machine struct {
	m     *machine
	dirty bool
}

// NewMachine builds a reusable reference machine for the configuration.
func NewMachine(cfg Config) *Machine {
	return &Machine{m: newMachine(cfg)}
}

// Run simulates the trace, resetting the machine first if it has already
// run.
//
//ovlint:hotpath the reusable-machine run path is the sweep inner loop and must stay allocation-free
func (mm *Machine) Run(t *trace.Trace) *metrics.RunStats {
	if mm.dirty {
		mm.Reset(mm.m.cfg)
	}
	mm.dirty = true
	mm.m.reserveFor(t)
	return mm.m.run(t)
}

// Reset restores the power-on state under a (possibly different)
// configuration.
func (mm *Machine) Reset(cfg Config) {
	mm.m.reset(cfg)
	mm.dirty = false
}

// machine is the reference-simulator state.
type machine struct {
	cfg Config //ovlint:config a checkpoint is only restored into a machine already reset to the identical configuration

	fu1, fu2, bus *sched.Monotonic
	ports         *vregfile.BankedFile

	aReady       [isa.NumLogicalA]int64
	sReady       [isa.NumLogicalS]int64
	vregs        [isa.NumLogicalV]vregState
	maskT        vregfile.Timing
	maskHasValue bool

	// In-order front-end state, kept on the machine (rather than as run
	// locals) so a mid-run checkpoint captures it.
	prevIssue   int64 // issue cycle of the previous instruction (-1 at start)
	lastVLTime  int64 // completion of the last SetVL/SetVS
	bubble      int64 // extra delay for the next instruction (taken branch)
	lastCycle   int64
	memRequests int64

	// stalls accumulates the per-cause stall attribution; on the in-order
	// machine only the shared-address-bus wait is tracked incrementally
	// (port conflicts are derived from the port file at end of run).
	stalls metrics.StallBreakdown

	readX, writeX int64 //ovlint:config crossbar latencies, fixed by the ISA at construction

	// Per-instruction scratch buffers and the state-breakdown edge buffer,
	// kept on the machine so reused runs allocate nothing for them.
	vReadsBuf [4]int          //ovlint:config per-instruction scratch, dead between steps
	rbuf      [4]isa.Reg      //ovlint:config per-instruction scratch, dead between steps
	bdScratch metrics.Scratch //ovlint:config per-run scratch, rebuilt from the interval lists by finish
}

func newMachine(cfg Config) *machine {
	return &machine{
		cfg:       cfg.withDefaults(),
		fu1:       sched.NewMonotonic(),
		fu2:       sched.NewMonotonic(),
		bus:       sched.NewMonotonic(),
		ports:     vregfile.NewBankedFile(isa.NumLogicalV),
		prevIssue: -1,
		readX:     int64(isa.ReadXbar(isa.MachineRef)),
		writeX:    int64(isa.WriteXbar(isa.MachineRef)),
	}
}

// reset restores the power-on state in place, keeping allocated storage.
//
//ovlint:coldpath once per run, amortised over the whole trace
func (m *machine) reset(cfg Config) {
	m.cfg = cfg.withDefaults()
	m.fu1.Reset()
	m.fu2.Reset()
	m.bus.Reset()
	m.ports.Reset()
	m.aReady = [isa.NumLogicalA]int64{}
	m.sReady = [isa.NumLogicalS]int64{}
	m.vregs = [isa.NumLogicalV]vregState{}
	m.maskT = vregfile.Timing{}
	m.maskHasValue = false
	m.prevIssue = -1
	m.lastVLTime, m.bubble, m.lastCycle, m.memRequests = 0, 0, 0, 0
	m.stalls = metrics.StallBreakdown{}
}

// reserveFor sizes the unit interval lists from the trace so a reused
// machine's steady-state run never grows them: a vector computation books
// at most one interval on each FU allocator and a memory instruction at
// most one bus interval. Called on the Machine (reuse) path only — a
// one-shot Run grows organically instead of paying the upper bound.
//
//ovlint:coldpath one reservation pass per run, amortised over the whole trace
func (m *machine) reserveFor(t *trace.Trace) {
	nV, nMem := 0, 0
	for i := range t.Insns {
		switch t.Insns[i].Op.ExecUnit() {
		case isa.UnitV:
			nV++
		case isa.UnitMem:
			nMem++
		}
	}
	m.fu1.Reserve(nV + 1)
	m.fu2.Reserve(nV + 1)
	m.bus.Reserve(nMem + 1)
}

// run executes the whole trace and assembles the measurements.
func (m *machine) run(t *trace.Trace) *metrics.RunStats {
	for i := range t.Insns {
		m.step(i, &t.Insns[i])
	}
	return m.finish(t)
}

// note tracks the latest activity for end-of-run accounting.
func (m *machine) note(c int64) {
	if c > m.lastCycle {
		m.lastCycle = c
	}
}

// scalarReady returns when a scalar operand can be read.
func (m *machine) scalarReady(r isa.Reg) int64 {
	switch r.Class {
	case isa.RegA:
		return m.aReady[r.Idx]
	case isa.RegS:
		return m.sReady[r.Idx]
	}
	return 0
}

// step processes one dynamic instruction through the in-order pipeline.
//
//ovlint:hotpath runs once per dynamic instruction; any allocation here multiplies by trace length
func (m *machine) step(i int, in *isa.Instruction) {
	cfg := m.cfg
	fu1, fu2, bus, ports := m.fu1, m.fu2, m.bus, m.ports
	aReady, sReady, vregs := &m.aReady, &m.sReady, &m.vregs
	readX, writeX := m.readX, m.writeX
	const vstart = int64(isa.VectorStartup)

	vl := int64(in.EffVL())
	occ := vl // unit occupancy: startup dead time + one cycle per element
	if in.Op.IsVector() {
		occ += vstart
	}

	// In-order single issue: one instruction per cycle, plus any branch
	// bubble from the previous instruction.
	cand := m.prevIssue + 1 + m.bubble
	m.bubble = 0

	// Operand readiness.
	vReads := m.vReadsBuf[:0]
	consumerChainable := in.Op.ExecUnit() == isa.UnitV || in.Op.IsStore()
	for _, r := range in.Reads(m.rbuf[:]) {
		switch r.Class {
		case isa.RegA, isa.RegS:
			if rdy := m.scalarReady(r); rdy > cand {
				cand = rdy
			}
		case isa.RegV:
			st := &vregs[r.Idx]
			if st.hasValue {
				if rdy := st.timing.ReadyFor(consumerChainable); rdy > cand {
					cand = rdy
				}
			}
			vReads = append(vReads, int(r.Idx))
		case isa.RegM:
			if m.maskHasValue {
				if rdy := m.maskT.ReadyFor(consumerChainable); rdy > cand {
					cand = rdy
				}
			}
		}
	}

	// Vector instructions execute under the architected VL/VS, so they
	// serialise behind the last SetVL/SetVS.
	if in.Op.IsVector() && m.lastVLTime > cand {
		cand = m.lastVLTime
	}

	// Register hazards on the destination (no renaming): WAW waits for
	// the previous value's last element; WAR waits for the most recent
	// reader to have started (it then stays one element ahead).
	vWrite := -1
	if in.WritesReg() {
		switch in.Dst.Class {
		case isa.RegV:
			st := &vregs[in.Dst.Idx]
			if st.hasValue && st.timing.Complete+1 > cand {
				cand = st.timing.Complete + 1 // WAW
			}
			if st.lastReadStart+1 > cand {
				cand = st.lastReadStart + 1 // WAR
			}
			vWrite = int(in.Dst.Idx)
		case isa.RegM:
			if m.maskHasValue && m.maskT.Complete+1 > cand {
				cand = m.maskT.Complete + 1
			}
		}
	}

	var issue int64
	switch in.Op.ExecUnit() {
	case isa.UnitV:
		// Pick the functional unit: FU2-only ops go to FU2; flexible
		// ops go to whichever frees first (FU1 preferred on ties).
		fu := fu1
		if in.Op.NeedsFU2() || fu2.NextFree() < fu1.NextFree() {
			fu = fu2
		}
		if in.Op.NeedsFU2() {
			fu = fu2
		}
		if nf := fu.NextFree(); nf > cand {
			cand = nf
		}
		// Reading operands costs the crossbar traversal.
		cand += readX
		issue = ports.Acquire(vReads, vWrite, cand, occ)
		fu.Allocate(issue, occ)
		lat := int64(isa.ExecLatency(in.Op)) + vstart
		tm := vregfile.Timing{
			ChainStart: issue + lat + writeX,
			Complete:   issue + lat + writeX + vl - 1,
		}
		if in.Dst.Class == isa.RegV {
			st := &vregs[in.Dst.Idx]
			st.timing, st.hasValue = tm, true
		} else if in.Dst.Class == isa.RegM {
			m.maskT, m.maskHasValue = tm, true
		} else if in.Dst.Class == isa.RegS {
			// Reductions deliver a scalar.
			sReady[in.Dst.Idx] = tm.Complete
		}
		m.note(tm.Complete)

	case isa.UnitMem:
		if nf := bus.NextFree(); nf > cand {
			m.stalls.MemBusBusy += nf - cand
			if s := cfg.Sink; s != nil {
				s.Stall(probe.CauseMemBusBusy, nf-cand)
			}
			cand = nf
		}
		var issuePorts int64 = cand
		if in.Op.IsVector() {
			issuePorts = ports.Acquire(vReads, vWrite, cand, occ)
		}
		issue = bus.Allocate(issuePorts, occ)
		m.memRequests += vl
		if in.Op.IsLoad() {
			if in.Op.IsVector() {
				tm := vregfile.Timing{
					ChainStart: issue + vstart + cfg.MemLatency + writeX,
					Complete:   issue + vstart + cfg.MemLatency + writeX + vl - 1,
					FromMem:    true,
				}
				st := &vregs[in.Dst.Idx]
				st.timing, st.hasValue = tm, true
				m.note(tm.Complete)
			} else {
				rdy := issue + cfg.ScalarMemLatency + 1
				if in.Dst.Class == isa.RegA {
					aReady[in.Dst.Idx] = rdy
				} else {
					sReady[in.Dst.Idx] = rdy
				}
				m.note(rdy)
			}
		} else {
			// Stores: no observed latency; done when last request issued.
			m.note(issue + occ)
		}

	case isa.UnitA, isa.UnitS:
		issue = cand
		lat := int64(isa.ExecLatency(in.Op))
		done := issue + lat
		if in.Dst.Class == isa.RegA {
			aReady[in.Dst.Idx] = done
		} else if in.Dst.Class == isa.RegS {
			sReady[in.Dst.Idx] = done
		}
		if in.Op == isa.OpSetVL || in.Op == isa.OpSetVS {
			m.lastVLTime = done
		}
		m.note(done)

	case isa.UnitCtl:
		issue = cand
		if in.Taken {
			m.bubble = cfg.TakenBranchPenalty
		}
		m.note(issue + 1)

	default: // OpNop
		issue = cand
		m.note(issue + 1)
	}

	// Record reader starts for WAR tracking.
	for _, vr := range vReads {
		if issue > vregs[vr].lastReadStart {
			vregs[vr].lastReadStart = issue
		}
	}
	m.prevIssue = issue

	if s := cfg.Sink; s != nil {
		s.Insn(probe.Event{
			Index: i, Op: in.Op,
			Fetch: -1, Decode: -1, Issue: issue,
			Exec: issue, Complete: m.lastCycle, Commit: -1,
		})
	}
}

// finish assembles the run statistics.
//
//ovlint:coldpath once per run, amortised over the whole trace
func (m *machine) finish(t *trace.Trace) *metrics.RunStats {
	total := m.lastCycle + 1
	st := &metrics.RunStats{
		Machine:                "REF",
		Program:                t.Name,
		Cycles:                 total,
		Instructions:           int64(t.Len()),
		MemPortBusy:            m.bus.BusyCycles(),
		MemRequests:            m.memRequests,
		VRegPortConflictCycles: m.ports.ConflictCycles(),
		Stalls:                 m.stalls,
	}
	st.Stalls.PortConflict = st.VRegPortConflictCycles
	st.States = m.bdScratch.StateBreakdown(m.fu2.Intervals(), m.fu1.Intervals(), m.bus.Intervals(), total)
	return st
}
