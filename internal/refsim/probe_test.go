package refsim

import (
	"bytes"
	"context"
	"encoding/gob"
	"io"
	"testing"

	"oovec/internal/probe"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

func refProbeTrace(t *testing.T, name string, insns int) *trace.Trace {
	t.Helper()
	p, ok := tgen.PresetByName(name)
	if !ok {
		t.Fatalf("no preset %q", name)
	}
	p.Insns = insns
	return tgen.Generate(p)
}

func encodeStats(t *testing.T, st any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRefProbeDoesNotPerturbResults is the reference machine's
// observation-only contract, mirroring the OOOVA test.
func TestRefProbeDoesNotPerturbResults(t *testing.T) {
	tr := refProbeTrace(t, "hydro2d", 3000)
	cfg := DefaultConfig()
	off := encodeStats(t, Run(tr, cfg))

	counting := cfg
	counting.Sink = &probe.Counter{}
	if !bytes.Equal(encodeStats(t, Run(tr, counting)), off) {
		t.Error("Counter sink perturbed REF RunStats")
	}
	tracing := cfg
	tracing.Sink = probe.NewKanata(io.Discard)
	if !bytes.Equal(encodeStats(t, Run(tr, tracing)), off) {
		t.Error("Kanata sink perturbed REF RunStats")
	}
}

// TestRefProbeByteIdentityAcrossResume: probe-on checkpointed segments must
// reproduce the probe-off uninterrupted measurements exactly.
func TestRefProbeByteIdentityAcrossResume(t *testing.T) {
	tr := refProbeTrace(t, "bdna", 4000)
	cfg := DefaultConfig()
	want := encodeStats(t, Run(tr, cfg))

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	probed := cfg
	probed.Sink = &probe.Counter{}
	var ck *Checkpoint
	var got []byte
	segments := 0
	for {
		st, stop, err := NewMachine(probed).RunCheckpointed(tr, RunOpts{
			Ctx: canceled, CheckEvery: 700, Resume: ck,
		})
		if stop == nil {
			if err != nil {
				t.Fatal(err)
			}
			got = encodeStats(t, st)
			break
		}
		b, err := stop.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if ck, err = DecodeCheckpoint(b); err != nil {
			t.Fatal(err)
		}
		if segments++; segments > tr.Len()/700+2 {
			t.Fatal("resume not progressing")
		}
	}
	if segments < 2 {
		t.Fatalf("only %d segments, no resume exercised", segments)
	}
	if !bytes.Equal(got, want) {
		t.Error("probe-on resumed REF RunStats differ from probe-off uninterrupted run")
	}
}

// TestRefStallAttribution: the reference machine models exactly one stall
// cause — the shared memory bus — and its sink-visible cycles must match
// the stats, with the port-conflict figure derived from port state.
func TestRefStallAttribution(t *testing.T) {
	tr := refProbeTrace(t, "swm256", 3000)
	cfg := DefaultConfig()
	var c probe.Counter
	cfg.Sink = &c
	st := Run(tr, cfg)
	if c.Insns != int64(tr.Len()) {
		t.Errorf("sink saw %d instructions, trace has %d", c.Insns, tr.Len())
	}
	if c.StallCycles[probe.CauseMemBusBusy] != st.Stalls.MemBusBusy {
		t.Errorf("sink mem-bus cycles %d != stats %d",
			c.StallCycles[probe.CauseMemBusBusy], st.Stalls.MemBusBusy)
	}
	if st.Stalls.PortConflict != st.VRegPortConflictCycles {
		t.Errorf("Stalls.PortConflict %d != VRegPortConflictCycles %d",
			st.Stalls.PortConflict, st.VRegPortConflictCycles)
	}
	if st.Stalls.ROBFull != 0 || st.Stalls.IQFull() != 0 || st.Stalls.NoPhysReg() != 0 {
		t.Error("in-order machine reported out-of-order stall causes")
	}
}
