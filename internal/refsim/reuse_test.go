package refsim

import (
	"reflect"
	"testing"

	"oovec/internal/tgen"
)

// TestMachineReuseMatchesFreshRuns runs several (benchmark, config) pairs
// through one reused Machine and asserts every measurement matches a fresh
// one-shot Run — the correctness contract of Reset (mirrors
// internal/ooosim/reuse_test.go).
func TestMachineReuseMatchesFreshRuns(t *testing.T) {
	slow := DefaultConfig()
	slow.MemLatency = 100
	fast := DefaultConfig()
	fast.MemLatency = 1
	noPenalty := DefaultConfig()
	noPenalty.TakenBranchPenalty = 0
	configs := []Config{DefaultConfig(), slow, fast, noPenalty, DefaultConfig()}

	var mm *Machine
	for _, name := range []string{"swm256", "trfd", "bdna"} {
		p, _ := tgen.PresetByName(name)
		p.Insns = 2000
		tr := tgen.Generate(p)
		for ci, cfg := range configs {
			want := Run(tr, cfg)
			if mm == nil {
				mm = NewMachine(cfg)
			} else {
				mm.Reset(cfg)
			}
			got := mm.Run(tr)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s config %d: reused machine stats differ\ngot:  %+v\nwant: %+v",
					name, ci, got, want)
			}
			// Back-to-back Run on a dirty machine must self-reset.
			if again := mm.Run(tr); !reflect.DeepEqual(again, want) {
				t.Errorf("%s config %d: second reused run differs", name, ci)
			}
		}
	}
}

// TestMachineZeroConfigDefaults checks that a reused machine resolves the
// latency defaults exactly like the package-level Run.
func TestMachineZeroConfigDefaults(t *testing.T) {
	p, _ := tgen.PresetByName("hydro2d")
	p.Insns = 1000
	tr := tgen.Generate(p)

	want := Run(tr, Config{})
	got := NewMachine(Config{}).Run(tr)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("zero-config reused run differs\ngot:  %+v\nwant: %+v", got, want)
	}
}
