package refsim

import "sync"

// MachinePool recycles Machines across concurrent borrowers, mirroring
// ooosim.MachinePool: the checkout/checkin primitive behind the ovserve
// request handlers. Machines remain single-goroutine objects; the pool
// hands each one to one borrower at a time. The zero value is ready to use.
type MachinePool struct {
	p sync.Pool
}

// Get checks out a machine reset to cfg, building one if the pool is empty.
// Return it with Put when the run is finished.
func (mp *MachinePool) Get(cfg Config) *Machine {
	if m, ok := mp.p.Get().(*Machine); ok {
		m.Reset(cfg)
		return m
	}
	return NewMachine(cfg)
}

// Put checks a machine back in for a later Get to reuse.
func (mp *MachinePool) Put(m *Machine) {
	if m != nil {
		mp.p.Put(m)
	}
}
