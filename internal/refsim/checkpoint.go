package refsim

// Mid-run checkpointing for the reference machine, mirroring
// ooosim.Checkpoint: the complete deterministic machine state at an
// instruction boundary, serialisable with encoding/gob, restorable into any
// machine reset to the same configuration.

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"

	"oovec/internal/isa"
	"oovec/internal/metrics"
	"oovec/internal/sched"
	"oovec/internal/trace"
	"oovec/internal/vregfile"
)

// DefaultCheckEvery is the abort-check granularity of RunCheckpointed (see
// ooosim.DefaultCheckEvery).
const DefaultCheckEvery = 2048

// VRegSnapshot is the exported form of one logical vector register's hazard
// state.
type VRegSnapshot struct {
	Timing        vregfile.Timing
	LastReadStart int64
	HasValue      bool
}

// Checkpoint is the complete deterministic state of a reference-machine
// simulation at an instruction boundary: instructions [0, NextInsn) have
// been simulated.
type Checkpoint struct {
	// NextInsn is the index of the first instruction not yet simulated.
	NextInsn int
	// TraceLen guards against resuming on the wrong trace.
	TraceLen int

	FU1, FU2, Bus sched.MonotonicState
	Ports         vregfile.BankedFileState

	AReady [isa.NumLogicalA]int64
	SReady [isa.NumLogicalS]int64
	VRegs  [isa.NumLogicalV]VRegSnapshot

	MaskT        vregfile.Timing
	MaskHasValue bool

	PrevIssue, LastVLTime, Bubble, LastCycle, MemRequests int64

	Stalls metrics.StallBreakdown
}

// Encode serialises the checkpoint with encoding/gob.
func (ck *Checkpoint) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint deserialises a checkpoint produced by Encode.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	ck := new(Checkpoint)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(ck); err != nil {
		return nil, err
	}
	return ck, nil
}

// snapshot captures the full machine state at instruction boundary nextInsn.
func (m *machine) snapshot(nextInsn, traceLen int) *Checkpoint {
	ck := &Checkpoint{
		NextInsn: nextInsn,
		TraceLen: traceLen,

		FU1:   m.fu1.Snapshot(),
		FU2:   m.fu2.Snapshot(),
		Bus:   m.bus.Snapshot(),
		Ports: m.ports.Snapshot(),

		AReady: m.aReady,
		SReady: m.sReady,

		MaskT:        m.maskT,
		MaskHasValue: m.maskHasValue,

		PrevIssue:   m.prevIssue,
		LastVLTime:  m.lastVLTime,
		Bubble:      m.bubble,
		LastCycle:   m.lastCycle,
		MemRequests: m.memRequests,

		Stalls: m.stalls,
	}
	for i := range m.vregs {
		v := &m.vregs[i]
		ck.VRegs[i] = VRegSnapshot{Timing: v.timing, LastReadStart: v.lastReadStart, HasValue: v.hasValue}
	}
	return ck
}

// restore replaces the machine state with ck.
func (m *machine) restore(ck *Checkpoint) {
	m.fu1.Restore(ck.FU1)
	m.fu2.Restore(ck.FU2)
	m.bus.Restore(ck.Bus)
	m.ports.Restore(ck.Ports)
	m.aReady = ck.AReady
	m.sReady = ck.SReady
	for i := range m.vregs {
		s := &ck.VRegs[i]
		m.vregs[i] = vregState{timing: s.Timing, lastReadStart: s.LastReadStart, hasValue: s.HasValue}
	}
	m.maskT = ck.MaskT
	m.maskHasValue = ck.MaskHasValue
	m.prevIssue = ck.PrevIssue
	m.lastVLTime = ck.LastVLTime
	m.bubble = ck.Bubble
	m.lastCycle = ck.LastCycle
	m.memRequests = ck.MemRequests
	m.stalls = ck.Stalls
}

// RunOpts configures a cancellable, checkpointable run; the fields mirror
// ooosim.RunOpts.
type RunOpts struct {
	// Ctx, when non-nil, cancels the run mid-trace (polled every CheckEvery
	// instructions); on cancellation RunCheckpointed returns a checkpoint of
	// the current instruction boundary along with ctx's error.
	Ctx context.Context
	// CheckEvery is the abort-check/progress granularity in instructions
	// (<= 0 selects DefaultCheckEvery).
	CheckEvery int
	// CheckpointEvery, when > 0, invokes OnCheckpoint at every multiple of
	// this many instructions.
	CheckpointEvery int
	// OnCheckpoint receives the periodic checkpoints (taken synchronously;
	// the checkpoint shares no state with the machine).
	OnCheckpoint func(*Checkpoint)
	// OnProgress, when non-nil, receives the instructions-simulated count at
	// CheckEvery granularity.
	OnProgress func(done int)
	// Resume, when non-nil, restores this checkpoint instead of starting
	// from instruction zero.
	Resume *Checkpoint
}

// RunCheckpointed simulates the trace like Run, with cooperative
// cancellation and checkpointing. On completion it returns (stats, nil,
// nil); on cancellation (nil, checkpoint, ctx error). A resumed run's final
// stats are byte-identical to an uninterrupted run's.
func (mm *Machine) RunCheckpointed(t *trace.Trace, opts RunOpts) (*metrics.RunStats, *Checkpoint, error) {
	if mm.dirty {
		mm.Reset(mm.m.cfg)
	}
	mm.dirty = true
	m := mm.m
	start := 0
	if opts.Resume != nil {
		if opts.Resume.TraceLen != t.Len() {
			return nil, nil, fmt.Errorf("refsim: checkpoint is for a %d-instruction trace, got %d",
				opts.Resume.TraceLen, t.Len())
		}
		m.restore(opts.Resume)
		start = opts.Resume.NextInsn
	}
	m.reserveFor(t)
	check := opts.CheckEvery
	if check <= 0 {
		check = DefaultCheckEvery
	}
	for i := start; i < t.Len(); i++ {
		if i > start && i%check == 0 {
			if opts.OnProgress != nil {
				opts.OnProgress(i)
			}
			if opts.Ctx != nil {
				if err := opts.Ctx.Err(); err != nil {
					return nil, m.snapshot(i, t.Len()), err
				}
			}
		}
		if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil &&
			i > start && i%opts.CheckpointEvery == 0 {
			opts.OnCheckpoint(m.snapshot(i, t.Len()))
		}
		m.step(i, &t.Insns[i])
	}
	return m.finish(t), nil, nil
}
