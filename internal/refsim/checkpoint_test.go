package refsim

import (
	"context"
	"reflect"
	"testing"

	"oovec/internal/metrics"
	"oovec/internal/tgen"
	"oovec/internal/trace"
)

func checkpointTestTrace(t *testing.T, name string, insns int) *trace.Trace {
	t.Helper()
	p, ok := tgen.PresetByName(name)
	if !ok {
		t.Fatalf("no preset %q", name)
	}
	p.Insns = insns
	return tgen.Generate(p)
}

// TestRunCheckpointedMatchesRun asserts the checkpointable run path with no
// cancellation is observationally identical to Run.
func TestRunCheckpointedMatchesRun(t *testing.T) {
	tr := checkpointTestTrace(t, "hydro2d", 3000)
	for _, cfg := range []Config{DefaultConfig(), {MemLatency: 10}, {MemLatency: 100, TakenBranchPenalty: 4}} {
		want := Run(tr, cfg)
		got, ck, err := NewMachine(cfg).RunCheckpointed(tr, RunOpts{Ctx: context.Background()})
		if err != nil || ck != nil {
			t.Fatalf("unexpected (ck=%v, err=%v)", ck != nil, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("lat %d: RunCheckpointed stats differ from Run\ngot:  %+v\nwant: %+v",
				cfg.MemLatency, got, want)
		}
	}
}

// TestCheckpointResumeDeterminism cancels a run repeatedly, round-trips each
// checkpoint through gob, resumes on a brand-new machine, and asserts the
// final measurements are identical to an uninterrupted run.
func TestCheckpointResumeDeterminism(t *testing.T) {
	tr := checkpointTestTrace(t, "bdna", 4000)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	const every = 700

	for _, cfg := range []Config{DefaultConfig(), {MemLatency: 10}} {
		want := Run(tr, cfg)

		var ck *Checkpoint
		var got *metrics.RunStats
		segments := 0
		for {
			mm := NewMachine(cfg)
			res, stop, err := mm.RunCheckpointed(tr, RunOpts{
				Ctx: canceled, CheckEvery: every, Resume: ck,
			})
			if stop == nil {
				if err != nil {
					t.Fatalf("completed segment returned error %v", err)
				}
				got = res
				break
			}
			if err == nil {
				t.Fatalf("canceled segment returned nil error")
			}
			b, err := stop.Encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			ck, err = DecodeCheckpoint(b)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			segments++
			if segments > tr.Len()/every+2 {
				t.Fatalf("too many segments (%d), resume not progressing", segments)
			}
		}
		if segments < 2 {
			t.Fatalf("only %d segments, test exercised no resume", segments)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("lat %d: resumed stats differ from uninterrupted run\ngot:  %+v\nwant: %+v",
				cfg.MemLatency, got, want)
		}
	}
}

// TestPeriodicCheckpointResume collects periodic checkpoints from an
// uninterrupted run and resumes from each on a fresh machine.
func TestPeriodicCheckpointResume(t *testing.T) {
	tr := checkpointTestTrace(t, "trfd", 3000)
	cfg := DefaultConfig()
	want := Run(tr, cfg)

	var cks []*Checkpoint
	res, _, err := NewMachine(cfg).RunCheckpointed(tr, RunOpts{
		CheckpointEvery: 800,
		OnCheckpoint:    func(ck *Checkpoint) { cks = append(cks, ck) },
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("checkpointing run differs from plain run")
	}
	if len(cks) < 3 {
		t.Fatalf("expected >= 3 periodic checkpoints, got %d", len(cks))
	}
	for _, ck := range cks {
		got, _, err := NewMachine(cfg).RunCheckpointed(tr, RunOpts{Resume: ck})
		if err != nil {
			t.Fatalf("resume from %d: %v", ck.NextInsn, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("resume from instruction %d: stats differ from uninterrupted run", ck.NextInsn)
		}
	}
}
