// Package cli shares small helpers between the oovec commands.
package cli

import (
	"io"
	"os"
)

// WriteFile creates path, streams content through write, then syncs and
// closes the file, reporting the first error from any step. A full disk
// often only surfaces at Sync or Close; swallowing those (the classic
// `defer f.Close()`) would leave a silently truncated file behind an
// exit status of 0.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if err := write(f); err != nil {
		return err
	}
	return f.Sync()
}
