// Package cli shares small helpers between the oovec commands.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"oovec/internal/engine"
	"oovec/internal/ooosim"
	"oovec/internal/rob"
	"oovec/internal/store"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM, for
// commands that want Ctrl-C to stop a long grid between simulations
// instead of killing the process mid-write. The signal handler unregisters
// itself as soon as the context fires, so a second signal gets the default
// behaviour (immediate exit) — an impatient second Ctrl-C is never
// swallowed while a long simulation point drains.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

// ParseCommit maps the user-facing commit-policy vocabulary onto
// rob.Policy. Every surface accepting a commit policy — ovsim, ovsweep,
// the ovserve API — parses through here, so the accepted words and the
// error message cannot drift between them. The empty string selects the
// paper's default (early).
func ParseCommit(s string) (rob.Policy, error) {
	switch s {
	case "", "early":
		return rob.PolicyEarly, nil
	case "late":
		return rob.PolicyLate, nil
	}
	return rob.PolicyEarly, fmt.Errorf("unknown commit policy %q (early | late)", s)
}

// ParseElim maps the user-facing load-elimination vocabulary onto
// ooosim.ElimMode ("slevle" is accepted as a shell-friendly alias for
// "sle+vle"). The empty string selects none.
func ParseElim(s string) (ooosim.ElimMode, error) {
	switch s {
	case "", "none":
		return ooosim.ElimNone, nil
	case "sle":
		return ooosim.ElimSLE, nil
	case "sle+vle", "slevle":
		return ooosim.ElimSLEVLE, nil
	}
	return ooosim.ElimNone, fmt.Errorf("unknown elimination mode %q (none | sle | sle+vle)", s)
}

// Common carries the flags every oovec command shares: the -j worker-count
// request and -v verbosity. Register them with RegisterCommon so the flag
// names, help text and resolution logic cannot drift between commands.
type Common struct {
	// Jobs is the raw -j value; Workers resolves it.
	Jobs int
	// Verbose enables progress output on stderr.
	Verbose bool
}

// RegisterCommon registers -j and -v on the flag set (commands pass
// flag.CommandLine) and returns the destination struct.
func RegisterCommon(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Jobs, "j", 0, "parallel simulation workers, each reusing pooled simulator machines (0 = one per core, 1 = serial); output is identical for every value")
	fs.BoolVar(&c.Verbose, "v", false, "verbose: print the resolved worker count to stderr")
	return c
}

// Workers resolves the -j request (0 = one worker per core).
func (c *Common) Workers() int { return engine.Workers(c.Jobs) }

// Announce prints the resolved worker count to stderr under -v.
func (c *Common) Announce(cmd string) {
	if c.Verbose {
		fmt.Fprintf(os.Stderr, "%s: using %d workers\n", cmd, c.Workers())
	}
}

// CacheFlags carries the durable result-store flags every simulation
// command shares: -cache-dir points sweeps, benches and the daemon at one
// on-disk content-addressed store, so repeated invocations across process
// restarts only simulate their delta. Register with RegisterCache so the
// flag names and semantics cannot drift between commands.
type CacheFlags struct {
	// Dir is the store directory; empty disables the disk tier.
	Dir string
	// DiskBytes bounds the store's size (least-recently-used entry files
	// are evicted past it; <= 0 = unbounded).
	DiskBytes int64
}

// RegisterCache registers -cache-dir and -cache-disk-bytes on the flag set
// and returns the destination struct.
func RegisterCache(fs *flag.FlagSet) *CacheFlags {
	c := &CacheFlags{}
	fs.StringVar(&c.Dir, "cache-dir", "", "directory of the durable content-addressed result store; results persist across runs and are shared with every command pointed at the same directory (empty = in-memory caching only)")
	fs.Int64Var(&c.DiskBytes, "cache-disk-bytes", 256<<20, "result store size bound in bytes; least-recently-used entries are evicted past it (0 = unbounded)")
	return c
}

// Open opens the configured store, or returns (nil, nil) when -cache-dir
// is unset. Callers must Close the store on every exit path that should
// keep completed work (including SIGINT), flushing write-behind saves.
func (c *CacheFlags) Open() (*store.Store, error) {
	if c.Dir == "" {
		return nil, nil
	}
	return store.Open(c.Dir, c.DiskBytes)
}

// WriteFile creates path, streams content through write, then syncs and
// closes the file, reporting the first error from any step. A full disk
// often only surfaces at Sync or Close; swallowing those (the classic
// `defer f.Close()`) would leave a silently truncated file behind an
// exit status of 0.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if err := write(f); err != nil {
		return err
	}
	return f.Sync()
}
