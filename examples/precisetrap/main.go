// Precise traps (§5): inject a page fault into a vector loop running on
// the late-commit OOOVA, roll back the renames of every in-flight younger
// instruction using the reorder-buffer records, and verify the recovered
// architectural mapping — the mechanism that makes virtual memory practical
// on a vector machine with hundreds of in-flight operations.
package main

import (
	"fmt"
	"sort"

	"oovec"
)

func main() {
	tr, err := oovec.GenerateBenchmark("flo52")
	if err != nil {
		panic(err)
	}

	// The faulting instruction: pick a vector load mid-trace (a page fault
	// on a vector reference is the §5 motivating case).
	faultIdx := -1
	count := 0
	for i := 0; i < tr.Len(); i++ {
		if in := tr.At(i); in.Op.IsLoad() && in.Op.IsVector() {
			count++
			if count == 100 {
				faultIdx = i
				break
			}
		}
	}
	fmt.Printf("injecting a page fault at instruction %d: %s\n", faultIdx, tr.At(faultIdx))

	cfg := oovec.DefaultOOOVAConfig()
	cfg.Commit = oovec.CommitLate // precise traps require the late-commit model
	res, err := oovec.RunOOOVAWithFault(tr, cfg, faultIdx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  fault detected at cycle %d\n", res.DetectCycle)
	fmt.Printf("  in-flight instructions squashed and rolled back: %d\n", res.InFlight)
	fmt.Printf("  precise state recovered as of cycle %d\n", res.PreciseCycle)

	// Verify: the recovered mapping equals the mapping after executing only
	// the pre-fault prefix.
	prefix := &oovec.Trace{Name: "prefix", Insns: tr.Insns[:faultIdx]}
	want := oovec.RunOOOVA(prefix, cfg)
	mismatches := 0
	classes := make([]oovec.RegClass, 0, len(res.Tables))
	for class := range res.Tables {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		table := res.Tables[class]
		for l := 0; l < class.NumLogical(); l++ {
			if table.Lookup(l) != want.Tables[class].Lookup(l) {
				mismatches++
			}
		}
	}
	if mismatches == 0 {
		fmt.Println("  rollback verified: recovered mapping matches the precise architectural state")
	} else {
		fmt.Printf("  ERROR: %d mapping mismatches after rollback\n", mismatches)
	}

	// The cost of enabling this (§5): early vs late commit on the full run.
	early := oovec.DefaultOOOVAConfig()
	late := early
	late.Commit = oovec.CommitLate
	ce := oovec.RunOOOVA(tr, early).Stats.Cycles
	cl := oovec.RunOOOVA(tr, late).Stats.Cycles
	fmt.Printf("\nprice of precise traps on %s: %d -> %d cycles (+%.1f%%)\n",
		tr.Name, ce, cl, 100*(float64(cl)/float64(ce)-1))
}
