// Dead-spill-store elision — the §6 future-work idea the paper left on the
// table: "Relaxing compatibility could lead to removing some spill stores,
// but we have not yet pursued this approach."
//
// This example pursues it: spill stores wait in a store buffer, and when a
// later spill overwrites exactly the same slot before anything read it, the
// buffered store dies without ever issuing memory requests. The memory
// image no longer reflects every intermediate spill (relaxed binary
// compatibility), but every consumed value is still correct — the reload
// either executes normally or is eliminated by VLE against the live
// register.
package main

import (
	"fmt"

	"oovec"
)

func main() {
	// A register-starved loop that re-spills a rotating set of slots every
	// iteration; only the final generation of spills is ever reloaded.
	const iters = 40
	b := oovec.NewTraceBuilder("respill")
	b.SetVL(64, oovec.A(0))
	for i := 0; i < iters; i++ {
		b.SetPC(0x300)
		b.VLoad(oovec.V(0), uint64(0x0100_0000+i*0x2000))
		b.Vector(oovec.OpVMul, oovec.V(1), oovec.V(0), oovec.V(2))
		b.SpillStore(oovec.V(1), uint64(0x0090_0000+(i%4)*0x2000))
		b.Branch(0x300, i != iters-1)
	}
	for s := 0; s < 4; s++ {
		b.SpillLoad(oovec.V(3), uint64(0x0090_0000+s*0x2000))
		b.VStore(oovec.V(3), uint64(0x0200_0000+s*0x2000))
	}
	tr := b.Build()

	base := oovec.DefaultOOOVAConfig()
	base.PhysVRegs = 32
	baseRun := oovec.RunOOOVA(tr, base).Stats

	elide := base
	elide.ElideDeadSpillStores = true
	elideRun := oovec.RunOOOVA(tr, elide).Stats

	fmt.Printf("%d spill stores emitted; %d slots live at loop exit\n", iters, 4)
	fmt.Printf("  baseline OOOVA : %6d memory requests\n", baseRun.MemRequests)
	fmt.Printf("  with elision   : %6d memory requests\n", elideRun.MemRequests)
	fmt.Printf("  dead stores    : %d (%d requests never sent)\n",
		elideRun.ElidedStores, elideRun.ElidedRequests)
	fmt.Printf("  traffic ratio  : %.3f\n", oovec.TrafficReduction(baseRun, elideRun))
	fmt.Println()
	fmt.Println("trade-off: the memory image no longer carries dead spill generations;")
	fmt.Println("strict binary compatibility (paper §6) is relaxed, consumed values stay exact.")
}
