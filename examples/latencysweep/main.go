// Latency sweep (the Figure 8 experiment on two contrasting benchmarks):
// how execution time responds to main-memory latency on the in-order
// reference machine versus the out-of-order OOOVA.
//
// swm256 (long vectors) and dyfesm (short vectors) bracket the paper's
// benchmark set. The reference machine's time climbs with latency — "even
// though it is a vector machine, memory latency influences execution time
// considerably" — while the OOOVA's stays nearly flat to 100 cycles.
package main

import (
	"fmt"

	"oovec"
)

func main() {
	latencies := []int64{1, 20, 50, 70, 100}
	for _, name := range []string{"swm256", "dyfesm"} {
		p, _ := oovec.BenchmarkPresetByName(name)
		p.Insns = 15000 // keep the example quick
		tr := oovec.GeneratePreset(p)

		fmt.Printf("%s:\n", name)
		fmt.Printf("  %-10s %12s %12s %9s\n", "latency", "REF cycles", "OOOVA cycles", "speedup")
		var ref1, ooo1 int64
		for _, lat := range latencies {
			refCfg := oovec.DefaultReferenceConfig()
			refCfg.MemLatency = lat
			ref := oovec.RunReference(tr, refCfg)

			oooCfg := oovec.DefaultOOOVAConfig()
			oooCfg.MemLatency = lat
			ooo := oovec.RunOOOVA(tr, oooCfg).Stats

			if lat == 1 {
				ref1, ooo1 = ref.Cycles, ooo.Cycles
			}
			fmt.Printf("  %-10d %12d %12d %9.2f\n", lat, ref.Cycles, ooo.Cycles,
				oovec.Speedup(ref, ooo))
			if lat == 100 {
				fmt.Printf("  1 -> 100 growth: REF +%.0f%%, OOOVA +%.0f%%\n",
					100*(float64(ref.Cycles)/float64(ref1)-1),
					100*(float64(ooo.Cycles)/float64(ooo1)-1))
			}
		}
		fmt.Println()
	}
}
