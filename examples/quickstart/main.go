// Quickstart: build a DAXPY kernel with the trace builder, run it on both
// machines, and print the out-of-order speedup — the paper's headline
// experiment at the smallest possible scale.
package main

import (
	"fmt"

	"oovec"
)

func main() {
	// DAXPY: y[i] = a*x[i] + y[i], strip-mined into 64-element vectors.
	const (
		iters = 64
		vlen  = 64
		xBase = uint64(0x0100_0000)
		yBase = uint64(0x0200_0000)
	)
	b := oovec.NewTraceBuilder("daxpy")
	b.SetVL(vlen, oovec.A(0))
	for i := 0; i < iters; i++ {
		off := uint64(i * vlen * 8)
		b.SetPC(0x100)                                              // loop body shares PCs so the BTB can learn the back edge
		b.VLoad(oovec.V(0), xBase+off)                              // x strip
		b.VLoad(oovec.V(1), yBase+off)                              // y strip
		b.Vector(oovec.OpVSMul, oovec.V(2), oovec.V(0), oovec.S(0)) // a*x
		b.Vector(oovec.OpVAdd, oovec.V(3), oovec.V(2), oovec.V(1))  // +y
		b.VStore(oovec.V(3), yBase+off)
		b.Scalar(oovec.OpAAdd, oovec.A(1), oovec.A(1), oovec.A(2))
		b.Branch(0x100, i != iters-1)
	}
	tr := b.Build()

	ref := oovec.RunReference(tr, oovec.DefaultReferenceConfig())
	ooo := oovec.RunOOOVA(tr, oovec.DefaultOOOVAConfig())

	fmt.Println("DAXPY,", tr.Len(), "dynamic instructions, VL =", vlen)
	fmt.Printf("  reference machine : %7d cycles (memory port idle %.1f%%)\n",
		ref.Cycles, ref.MemPortIdlePct())
	fmt.Printf("  OOOVA             : %7d cycles (memory port idle %.1f%%)\n",
		ooo.Stats.Cycles, ooo.Stats.MemPortIdlePct())
	fmt.Printf("  speedup           : %.2f\n", oovec.Speedup(ref, ooo.Stats))
	fmt.Printf("  IDEAL bound       : %.2f\n", oovec.IdealSpeedup(ref.Cycles, tr))
}
