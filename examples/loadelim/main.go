// Dynamic load elimination (§6): a spill-heavy kernel where the compiler
// ran out of the eight architectural vector registers and spilled live
// values to memory. With SLE+VLE, the reloads match the spill stores' tags
// and complete "in the time it takes to do the rename" — and the traffic
// they would have sent to memory disappears.
package main

import (
	"fmt"

	"oovec"
)

func main() {
	const (
		iters     = 48
		vlen      = 64
		spillBase = uint64(0x0090_0000)
	)
	b := oovec.NewTraceBuilder("spill-kernel")
	b.SetVL(vlen, oovec.A(0))
	var prevSlot uint64
	for i := 0; i < iters; i++ {
		off := uint64(i * vlen * 8)
		slot := spillBase + uint64(i%8)*0x2000
		b.SetPC(0x200)
		b.VLoad(oovec.V(0), 0x0100_0000+off)
		b.Vector(oovec.OpVMul, oovec.V(1), oovec.V(0), oovec.V(2))
		// Register pressure: park the product in a spill slot…
		b.SpillStore(oovec.V(1), slot)
		b.Vector(oovec.OpVAdd, oovec.V(1), oovec.V(0), oovec.V(3)) // clobber v1
		if prevSlot != 0 {
			// …and reload the previously spilled value for its last use.
			b.SpillLoad(oovec.V(4), prevSlot)
			b.Vector(oovec.OpVAdd, oovec.V(5), oovec.V(4), oovec.V(1))
			b.VStore(oovec.V(5), 0x0200_0000+off)
		}
		prevSlot = slot
		b.Branch(0x200, i != iters-1)
	}
	tr := b.Build()

	base := oovec.DefaultOOOVAConfig()
	base.PhysVRegs = 32
	base.Commit = oovec.CommitLate // the paper's §6 baseline
	baseRun := oovec.RunOOOVA(tr, base).Stats

	vle := base
	vle.LoadElim = oovec.ElimSLEVLE
	vleRun := oovec.RunOOOVA(tr, vle).Stats

	fmt.Println("spill-heavy kernel,", tr.Len(), "instructions:")
	fmt.Printf("  baseline OOOVA   : %6d cycles, %6d memory requests\n",
		baseRun.Cycles, baseRun.MemRequests)
	fmt.Printf("  OOOVA + SLE+VLE  : %6d cycles, %6d memory requests\n",
		vleRun.Cycles, vleRun.MemRequests)
	fmt.Printf("  eliminated loads : %d (%d requests never sent)\n",
		vleRun.EliminatedLoads, vleRun.EliminatedRequests)
	fmt.Printf("  speedup          : %.3f\n", oovec.Speedup(baseRun, vleRun))
	fmt.Printf("  traffic reduction: %.3f\n", oovec.TrafficReduction(baseRun, vleRun))
	fmt.Println()
	fmt.Println("note: spill *stores* still execute — the memory image must stay")
	fmt.Println("functionally correct (strict binary compatibility, §6).")
}
